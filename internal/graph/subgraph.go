package graph

// Subgraph is the induced-subgraph view of a cluster of nodes: a
// standalone Graph on local IDs 0..len(nodes)-1 plus the relabeling maps
// in both directions and the list of boundary edges (parent edges with
// exactly one endpoint inside the cluster). It is the unit the expander
// decomposition hands to the per-cluster embedding: cluster-local
// algorithms run on G, and the stitching layer translates node and edge
// IDs back to the parent graph.
type Subgraph struct {
	// G is the induced subgraph in local IDs. Edge weights are copied
	// from the parent, so weight-dependent algorithms (MST) see the
	// parent's weights.
	G *Graph

	parent   *Graph
	global   []int32 // local node -> parent node
	local    []int32 // parent node -> local node, -1 outside the cluster
	edgeGlob []int32 // local edge ID -> parent edge ID
	boundary []BoundaryEdge
}

// BoundaryEdge is a parent-graph edge with exactly one endpoint inside
// the cluster. Both endpoints are parent node IDs.
type BoundaryEdge struct {
	EdgeID  int // edge ID in the parent graph
	Inside  int // the endpoint inside the cluster
	Outside int // the endpoint outside the cluster
}

// InducedSubgraph returns the subgraph induced by nodes, relabeled to
// local IDs in the order given. Out-of-range or duplicate nodes panic,
// matching AddEdge's contract for programmatic construction errors.
//
// The induced graph is built on the streaming Build path: the internal
// parent edges are emitted twice, in parent edge-ID order, instead of
// materialized, so the adjacency lands in one flat arena. Local edge IDs
// enumerate that sequence (GlobalEdge maps them back), and because the
// order matches the parent's, the view of the full node set reproduces
// the parent graph exactly — same edge IDs, same port order.
func (g *Graph) InducedSubgraph(nodes []int) *Subgraph {
	local := make([]int32, g.n)
	for i := range local {
		local[i] = -1
	}
	global := make([]int32, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= g.n {
			panic("graph: induced subgraph node out of range")
		}
		if local[v] >= 0 {
			panic("graph: induced subgraph node listed twice")
		}
		local[v] = int32(i)
		global[i] = int32(v)
	}
	s := &Subgraph{parent: g, global: global, local: local}
	s.G = Build(len(nodes), func(add func(u, v int, w float64)) {
		// Build calls emit twice; reset so the fill pass leaves one copy.
		s.edgeGlob = s.edgeGlob[:0]
		// Scanning the parent edge list in ID order keeps relative edge
		// IDs and hence adjacency (port) order identical to the parent —
		// the view of the full graph is the identity, and any cluster
		// view inherits the parent's deterministic port numbering.
		for id, e := range g.edges {
			lu, lv := local[e.U], local[e.V]
			if lu < 0 || lv < 0 {
				continue
			}
			add(int(lu), int(lv), e.W)
			s.edgeGlob = append(s.edgeGlob, int32(id))
		}
	})
	for lu := range global {
		gu := int(global[lu])
		for _, h := range g.adj[gu] {
			if local[h.To] < 0 {
				s.boundary = append(s.boundary, BoundaryEdge{EdgeID: h.EdgeID, Inside: gu, Outside: h.To})
			}
		}
	}
	return s
}

// Parent returns the graph the subgraph was induced from.
func (s *Subgraph) Parent() *Graph { return s.parent }

// Global maps a local node ID to its parent node ID.
func (s *Subgraph) Global(local int) int { return int(s.global[local]) }

// Local maps a parent node ID to its local ID, or -1 if the node is not
// in the cluster.
func (s *Subgraph) Local(parent int) int { return int(s.local[parent]) }

// GlobalEdge maps a local edge ID (an edge of G) to its parent edge ID.
func (s *Subgraph) GlobalEdge(local int) int { return int(s.edgeGlob[local]) }

// Boundary returns the parent edges with exactly one endpoint inside the
// cluster, in local-node order of the inside endpoint. The returned
// slice must not be modified.
func (s *Subgraph) Boundary() []BoundaryEdge { return s.boundary }
