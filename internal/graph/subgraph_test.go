package graph

// Tests for the induced-subgraph cluster view: relabeling must
// round-trip in both directions, the cluster view of the full graph must
// be the identity, induced edges must carry parent weights and
// orientation, and boundary-edge lists must be symmetric across a
// partition (every cross edge shows up in exactly the two views of its
// endpoints, mirrored).

import (
	"math/rand/v2"
	"testing"
)

func TestInducedSubgraphIdentity(t *testing.T) {
	for _, g := range []*Graph{Ring(9), Lollipop(8, 4), Grid(4, 5), Complete(6)} {
		nodes := make([]int, g.N())
		for i := range nodes {
			nodes[i] = i
		}
		s := g.InducedSubgraph(nodes)
		if err := s.G.Validate(); err != nil {
			t.Fatalf("identity view invalid: %v", err)
		}
		if s.G.N() != g.N() || s.G.M() != g.M() {
			t.Fatalf("identity view: n=%d m=%d, want n=%d m=%d", s.G.N(), s.G.M(), g.N(), g.M())
		}
		for id := 0; id < g.M(); id++ {
			if s.G.Edge(id) != g.Edge(id) {
				t.Fatalf("identity view edge %d: got %+v, want %+v", id, s.G.Edge(id), g.Edge(id))
			}
			if s.GlobalEdge(id) != id {
				t.Fatalf("identity view GlobalEdge(%d) = %d", id, s.GlobalEdge(id))
			}
		}
		for v := 0; v < g.N(); v++ {
			if s.Global(v) != v || s.Local(v) != v {
				t.Fatalf("identity view relabel at %d: global=%d local=%d", v, s.Global(v), s.Local(v))
			}
			gh, wh := s.G.Neighbors(v), g.Neighbors(v)
			if len(gh) != len(wh) {
				t.Fatalf("identity view deg(%d)=%d, want %d", v, len(gh), len(wh))
			}
		}
		if len(s.Boundary()) != 0 {
			t.Fatalf("identity view has %d boundary edges", len(s.Boundary()))
		}
	}
}

func TestInducedSubgraphRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.IntN(40)
		g := Gnp(n, 0.2, r)
		// Random nonempty subset in random order.
		perm := r.Perm(n)
		k := 1 + r.IntN(n)
		nodes := perm[:k]
		s := g.InducedSubgraph(nodes)
		if err := s.G.Validate(); err != nil {
			t.Fatalf("trial %d: induced graph invalid: %v", trial, err)
		}
		inSet := make([]bool, n)
		for l, v := range nodes {
			inSet[v] = true
			if s.Global(l) != v {
				t.Fatalf("trial %d: Global(%d)=%d, want %d", trial, l, s.Global(l), v)
			}
			if s.Local(v) != l {
				t.Fatalf("trial %d: Local(%d)=%d, want %d", trial, v, s.Local(v), l)
			}
		}
		for v := 0; v < n; v++ {
			l := s.Local(v)
			if !inSet[v] {
				if l != -1 {
					t.Fatalf("trial %d: outside node %d has local id %d", trial, v, l)
				}
				continue
			}
			if s.Global(l) != v {
				t.Fatalf("trial %d: round-trip %d -> %d -> %d", trial, v, l, s.Global(l))
			}
		}
		// Induced edges carry parent orientation, weight, and edge IDs.
		for id := 0; id < s.G.M(); id++ {
			le, pe := s.G.Edge(id), g.Edge(s.GlobalEdge(id))
			if s.Global(le.U) != pe.U || s.Global(le.V) != pe.V || le.W != pe.W {
				t.Fatalf("trial %d: local edge %d = %+v does not match parent %+v", trial, id, le, pe)
			}
		}
		// Internal + boundary halfedges account for every parent edge
		// touching the set.
		internal, boundary := s.G.M(), len(s.Boundary())
		want := 0
		for _, e := range g.Edges() {
			switch {
			case inSet[e.U] && inSet[e.V]:
				want++
			}
		}
		if internal != want {
			t.Fatalf("trial %d: %d internal edges, want %d", trial, internal, want)
		}
		for _, b := range s.Boundary() {
			if !inSet[b.Inside] || inSet[b.Outside] {
				t.Fatalf("trial %d: boundary edge %+v sides wrong", trial, b)
			}
			e := g.Edge(b.EdgeID)
			if (e.U != b.Inside || e.V != b.Outside) && (e.V != b.Inside || e.U != b.Outside) {
				t.Fatalf("trial %d: boundary edge %+v does not match parent %+v", trial, b, e)
			}
		}
		if cut := g.CutSize(inSet); boundary != cut {
			t.Fatalf("trial %d: %d boundary edges, cut size %d", trial, boundary, cut)
		}
	}
}

func TestInducedSubgraphBoundarySymmetry(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 30; trial++ {
		n := 6 + r.IntN(30)
		g := Gnp(n, 0.25, r)
		var left, right []int
		for v := 0; v < n; v++ {
			if r.IntN(2) == 0 {
				left = append(left, v)
			} else {
				right = append(right, v)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		sl, sr := g.InducedSubgraph(left), g.InducedSubgraph(right)
		if len(sl.Boundary()) != len(sr.Boundary()) {
			t.Fatalf("trial %d: boundary sizes %d vs %d", trial, len(sl.Boundary()), len(sr.Boundary()))
		}
		mirror := make(map[int]BoundaryEdge, len(sr.Boundary()))
		for _, b := range sr.Boundary() {
			mirror[b.EdgeID] = b
		}
		for _, b := range sl.Boundary() {
			m, ok := mirror[b.EdgeID]
			if !ok {
				t.Fatalf("trial %d: edge %d on left boundary only", trial, b.EdgeID)
			}
			if m.Inside != b.Outside || m.Outside != b.Inside {
				t.Fatalf("trial %d: edge %d not mirrored: left %+v right %+v", trial, b.EdgeID, b, m)
			}
		}
	}
}

func TestInducedSubgraphRejectsBadNodes(t *testing.T) {
	g := Ring(5)
	mustPanic(t, "out-of-range node", func() { g.InducedSubgraph([]int{0, 5}) })
	mustPanic(t, "negative node", func() { g.InducedSubgraph([]int{-1}) })
	mustPanic(t, "duplicate node", func() { g.InducedSubgraph([]int{1, 2, 1}) })
}
