package graph

// Tests for the streaming construction path (Build) and the RingLattice
// scale-bench family: Build must be observationally identical to the
// New + AddEdge path (same edge IDs, same adjacency order), must reject
// the same invalid edges, must detect a nondeterministic emit, and must
// construct in O(1) allocations regardless of n.

import (
	"testing"
)

// emitFixture is a small irregular edge sequence exercising uneven
// degrees and non-monotone emission order.
func emitFixture(add func(u, v int, w float64)) {
	add(0, 1, 1)
	add(3, 2, 5)
	add(0, 4, 2)
	add(2, 0, 3)
	add(1, 4, 7)
	add(0, 3, 4)
}

func TestBuildMatchesAddEdge(t *testing.T) {
	want := New(5)
	emitFixture(func(u, v int, w float64) { want.AddEdge(u, v, w) })
	got := Build(5, emitFixture)

	if err := got.Validate(); err != nil {
		t.Fatalf("Build graph invalid: %v", err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("Build: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for id, e := range want.Edges() {
		if got.Edge(id) != e {
			t.Errorf("edge %d: got %+v, want %+v", id, got.Edge(id), e)
		}
	}
	for v := 0; v < want.N(); v++ {
		gh, wh := got.Neighbors(v), want.Neighbors(v)
		if len(gh) != len(wh) {
			t.Fatalf("node %d: degree %d, want %d", v, len(gh), len(wh))
		}
		// Port order is part of the contract: the simulator's port
		// numbering is the adjacency order, so Build must reproduce the
		// AddEdge insertion order exactly.
		for p := range wh {
			if gh[p] != wh[p] {
				t.Errorf("node %d port %d: got %+v, want %+v", v, p, gh[p], wh[p])
			}
		}
	}
}

func TestBuildEmptyAndEdgeless(t *testing.T) {
	g := Build(0, func(add func(u, v int, w float64)) {})
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty Build: n=%d m=%d", g.N(), g.M())
	}
	g = Build(4, func(add func(u, v int, w float64)) {})
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("edgeless Build: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("edgeless Build invalid: %v", err)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestBuildRejectsInvalidEdges(t *testing.T) {
	mustPanic(t, "self-loop", func() {
		Build(3, func(add func(u, v int, w float64)) { add(1, 1, 1) })
	})
	mustPanic(t, "out-of-range", func() {
		Build(3, func(add func(u, v int, w float64)) { add(0, 3, 1) })
	})
	mustPanic(t, "negative n", func() {
		Build(-1, func(add func(u, v int, w float64)) {})
	})
}

func TestBuildDetectsNondeterministicEmit(t *testing.T) {
	calls := 0
	mustPanic(t, "shrinking emit", func() {
		Build(4, func(add func(u, v int, w float64)) {
			calls++
			add(0, 1, 1)
			if calls == 1 { // second (fill) pass emits fewer edges
				add(1, 2, 1)
			}
		})
	})
}

// TestBuildAllocs pins the streaming construction cost: the adjacency of
// an n-node graph must land in O(1) allocations (graph struct, edge
// list, adjacency spine, one halfedge arena, one scratch degree slice),
// not O(n) slice growths. The generous bound still fails instantly if
// Build regresses to per-node or amortized-growth allocation.
func TestBuildAllocs(t *testing.T) {
	const n = 4096
	allocs := testing.AllocsPerRun(5, func() {
		RingLattice(n, 4)
	})
	if allocs > 10 {
		t.Fatalf("Build(RingLattice(%d,4)) costs %.0f allocs, want O(1) (<= 10)", n, allocs)
	}
}

func TestRingLattice(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{8, 1}, {9, 2}, {64, 4}, {101, 3}} {
		g := RingLattice(tc.n, tc.k)
		if err := g.Validate(); err != nil {
			t.Fatalf("RingLattice(%d,%d) invalid: %v", tc.n, tc.k, err)
		}
		if !g.IsConnected() {
			t.Fatalf("RingLattice(%d,%d) disconnected", tc.n, tc.k)
		}
		if g.M() != tc.n*tc.k {
			t.Fatalf("RingLattice(%d,%d): m=%d, want %d", tc.n, tc.k, g.M(), tc.n*tc.k)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != 2*tc.k {
				t.Fatalf("RingLattice(%d,%d): deg(%d)=%d, want %d", tc.n, tc.k, v, g.Degree(v), 2*tc.k)
			}
		}
	}
	mustPanic(t, "RingLattice k=0", func() { RingLattice(8, 0) })
	mustPanic(t, "RingLattice 2k>=n", func() { RingLattice(8, 4) })
}
