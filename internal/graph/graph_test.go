package graph

import (
	"testing"
	"testing/quick"

	"almostmix/internal/rngutil"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if g.IsConnected() {
		t.Fatal("5-node empty graph should not be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 2.5)
	if id != 0 {
		t.Fatalf("first edge id = %d, want 0", id)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} not visible from both endpoints")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if got := g.Edge(id).W; got != 2.5 {
		t.Fatalf("weight = %v, want 2.5", got)
	}
	if g.Other(id, 0) != 1 || g.Other(id, 1) != 0 {
		t.Fatal("Other endpoint wrong")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"out-of-range", 0, 7},
		{"negative", -1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%d,%d) did not panic", tc.u, tc.v)
				}
			}()
			New(3).AddEdge(tc.u, tc.v, 1)
		})
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	if g.M() != 10 {
		t.Fatalf("ring(10) has %d edges, want 10", g.M())
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("node %d degree %d, want 2", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("ring(10) diameter %d, want 5", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteAndStar(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", k.M())
	}
	if d := k.Diameter(); d != 1 {
		t.Fatalf("K6 diameter %d, want 1", d)
	}
	s := Star(6)
	if s.M() != 5 || s.Diameter() != 2 || s.MaxDegree() != 5 {
		t.Fatalf("star(6): m=%d diam=%d Δ=%d", s.M(), s.Diameter(), s.MaxDegree())
	}
}

func TestTorusRegularity(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus(4,5): n=%d m=%d, want 20, 40", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Fatal("torus disconnected")
	}
}

func TestGridCornersAndDiameter(t *testing.T) {
	g := Grid(3, 4)
	if g.Degree(0) != 2 {
		t.Fatalf("grid corner degree %d, want 2", g.Degree(0))
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("grid(3,4) diameter %d, want 5", d)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Q4 diameter %d, want 4", d)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15)
	if g.M() != 14 {
		t.Fatalf("tree edges %d, want 14", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("tree disconnected")
	}
	if d := g.Diameter(); d != 6 {
		t.Fatalf("complete binary tree on 15 nodes diameter %d, want 6", d)
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(8, 5)
	if g.N() != 13 {
		t.Fatalf("n=%d, want 13", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("lollipop disconnected")
	}
	// End of the path is 5 hops from the clique attachment, clique
	// itself has diameter 1.
	if d := g.Diameter(); d != 6 {
		t.Fatalf("lollipop diameter %d, want 6", d)
	}
}

func TestBarbellMinStructure(t *testing.T) {
	g := Barbell(5, 0)
	if g.N() != 10 {
		t.Fatalf("n=%d, want 10", g.N())
	}
	if g.M() != 2*10+1 {
		t.Fatalf("m=%d, want 21", g.M())
	}
	// The bridge is the only crossing edge.
	inS := make([]bool, g.N())
	for v := 0; v < 5; v++ {
		inS[v] = true
	}
	if cut := g.CutSize(inS); cut != 1 {
		t.Fatalf("barbell cut %d, want 1", cut)
	}

	g2 := Barbell(4, 3)
	if g2.N() != 11 || !g2.IsConnected() {
		t.Fatalf("barbell(4,3): n=%d connected=%v", g2.N(), g2.IsConnected())
	}
}

func TestRandomRegular(t *testing.T) {
	r := rngutil.NewRand(1)
	for _, tc := range []struct{ n, d int }{{10, 3}, {16, 4}, {50, 6}} {
		g := RandomRegular(tc.n, tc.d, r)
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): node %d degree %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if !g.IsConnected() {
			t.Fatalf("RandomRegular(%d,%d) disconnected", tc.n, tc.d)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGnpDensity(t *testing.T) {
	r := rngutil.NewRand(2)
	n, p := 200, 0.1
	g := Gnp(n, p, r)
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("G(%d,%g) has %v edges, want about %v", n, p, got, want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGnpExtremes(t *testing.T) {
	r := rngutil.NewRand(3)
	if g := Gnp(10, 0, r); g.M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if g := Gnp(10, 1, r); g.M() != 45 {
		t.Fatal("G(n,1) is not complete")
	}
}

func TestConnectedGnp(t *testing.T) {
	r := rngutil.NewRand(4)
	g, err := ConnectedGnp(64, 0.15, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("ConnectedGnp returned disconnected graph")
	}
	if _, err := ConnectedGnp(50, 0.001, r); err == nil {
		t.Fatal("expected failure for sub-threshold p")
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rngutil.NewRand(5)
	g := WattsStrogatz(100, 3, 0.2, r)
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	// Rewiring only ever moves edges; duplicates are skipped, so m <= nk.
	if g.M() > 300 {
		t.Fatalf("m=%d > nk=300", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDumbbellBridges(t *testing.T) {
	r := rngutil.NewRand(6)
	g := Dumbbell(20, 4, 3, r)
	if g.N() != 40 {
		t.Fatalf("n=%d, want 40", g.N())
	}
	inS := make([]bool, 40)
	for v := 0; v < 20; v++ {
		inS[v] = true
	}
	if cut := g.CutSize(inS); cut != 3 {
		t.Fatalf("dumbbell cut %d, want 3", cut)
	}
}

func TestDistinctRandomWeights(t *testing.T) {
	r := rngutil.NewRand(7)
	g := Complete(12)
	g.AssignDistinctRandomWeights(r)
	seen := make(map[float64]bool, g.M())
	for _, e := range g.Edges() {
		if seen[e.W] {
			t.Fatalf("duplicate weight %v", e.W)
		}
		seen[e.W] = true
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Ring(5)
	c := g.Clone()
	c.AddEdge(0, 2, 9)
	if g.M() != 5 || c.M() != 6 {
		t.Fatalf("clone not deep: g.M=%d c.M=%d", g.M(), c.M())
	}
	g.SetWeight(0, 42)
	if c.Edge(0).W == 42 {
		t.Fatal("clone shares edge storage")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("got %d components, want 4", len(comps))
	}
}

func TestBFSDistUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	dist := g.BFSDist(0)
	if dist[1] != 1 || dist[2] != -1 {
		t.Fatalf("dist=%v", dist)
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
}

// Property: every generated graph in a broad family satisfies Validate,
// and the handshake lemma holds.
func TestPropertyGeneratorsValid(t *testing.T) {
	f := func(seed uint64, which uint8, size uint8) bool {
		r := rngutil.NewRand(seed)
		n := 8 + int(size)%56
		var g *Graph
		switch which % 6 {
		case 0:
			g = Ring(n)
		case 1:
			g = Gnp(n, 0.3, r)
		case 2:
			if n%2 == 1 {
				n++
			}
			g = RandomRegular(n, 3, r)
		case 3:
			g = Lollipop(n/2+2, n/2)
		case 4:
			g = BinaryTree(n)
		case 5:
			g = Star(n)
		}
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		degSum := 0
		for v := 0; v < g.N(); v++ {
			degSum += g.Degree(v)
		}
		return degSum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: CutSize of the full set and the empty set is zero.
func TestPropertyCutExtremes(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.NewRand(seed)
		g := Gnp(30, 0.2, r)
		empty := make([]bool, g.N())
		full := make([]bool, g.N())
		for i := range full {
			full[i] = true
		}
		return g.CutSize(empty) == 0 && g.CutSize(full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMargulis(t *testing.T) {
	g := Margulis(6)
	if g.N() != 36 {
		t.Fatalf("n=%d, want 36", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("margulis disconnected")
	}
	if d := g.MaxDegree(); d > 8 {
		t.Fatalf("max degree %d > 8", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expansion sanity: the 36-node Margulis graph should have much
	// better diameter than the 6x6 torus-equivalent path structure.
	if d := g.Diameter(); d > 6 {
		t.Fatalf("margulis(6) diameter %d, expected small", d)
	}
}

func TestMargulisPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Margulis(1) did not panic")
		}
	}()
	Margulis(1)
}
