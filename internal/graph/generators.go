package graph

import (
	"fmt"
	"math/rand/v2"
)

// The deterministic generators stream their edge sequence through
// graph.Build: edges are emitted twice (count, then fill) instead of
// materialized in an intermediate list, and the adjacency lands in one
// flat halfedge arena — construction at n ≥ 10^6 costs a handful of
// allocations. Randomized generators keep the New + AddEdge path (their
// streams cannot be replayed deterministically without buffering).

// Ring returns the n-node cycle C_n (n >= 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 0; v < n; v++ {
			add(v, (v+1)%n, 1)
		}
	})
}

// RingLattice returns the ring lattice: n nodes on a cycle, each joined
// to its k nearest neighbors on each side (degree 2k; the unrewired
// Watts–Strogatz substrate). Deterministic and constant-degree, it is
// the graph family the engine scale benchmarks stream at n ≥ 10^6.
func RingLattice(n, k int) *Graph {
	if k < 1 || 2*k >= n {
		panic("graph: ring lattice needs 1 <= k < n/2")
	}
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 0; v < n; v++ {
			for j := 1; j <= k; j++ {
				add(v, (v+j)%n, 1)
			}
		}
	})
}

// Path returns the n-node path P_n.
func Path(n int) *Graph {
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 0; v+1 < n; v++ {
			add(v, v+1, 1)
		}
	})
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	return Build(n, func(add func(u, v int, w float64)) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				add(u, v, 1)
			}
		}
	})
}

// Star returns the star graph with node 0 at the center and n-1 leaves.
func Star(n int) *Graph {
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 1; v < n; v++ {
			add(0, v, 1)
		}
	})
}

// BinaryTree returns a complete binary tree on n nodes, with node 0 as the
// root and node v's children at 2v+1 and 2v+2.
func BinaryTree(n int) *Graph {
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 1; v < n; v++ {
			add((v-1)/2, v, 1)
		}
	})
}

// Torus returns the rows×cols 2-dimensional torus (wrap-around grid).
// Both dimensions must be at least 3 so that no duplicate edges arise.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus needs both dimensions >= 3")
	}
	id := func(r, c int) int { return r*cols + c }
	return Build(rows*cols, func(add func(u, v int, w float64)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				add(id(r, c), id((r+1)%rows, c), 1)
				add(id(r, c), id(r, (c+1)%cols), 1)
			}
		}
	})
}

// Grid returns the rows×cols 2-dimensional grid (no wrap-around).
func Grid(rows, cols int) *Graph {
	id := func(r, c int) int { return r*cols + c }
	return Build(rows*cols, func(add func(u, v int, w float64)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if r+1 < rows {
					add(id(r, c), id(r+1, c), 1)
				}
				if c+1 < cols {
					add(id(r, c), id(r, c+1), 1)
				}
			}
		}
	})
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	return Build(n, func(add func(u, v int, w float64)) {
		for v := 0; v < n; v++ {
			for b := 0; b < dim; b++ {
				u := v ^ (1 << b)
				if u > v {
					add(v, u, 1)
				}
			}
		}
	})
}

// Lollipop returns a clique on cliqueSize nodes with a path of pathLen
// extra nodes attached to clique node 0. It is the low-expansion,
// large-mixing-time family used to exhibit the regime where the paper's
// algorithm degrades (the lower-bound-style graphs of Das Sarma et al.
// have a similar bottleneck flavor).
func Lollipop(cliqueSize, pathLen int) *Graph {
	return Build(cliqueSize+pathLen, func(add func(u, v int, w float64)) {
		for u := 0; u < cliqueSize; u++ {
			for v := u + 1; v < cliqueSize; v++ {
				add(u, v, 1)
			}
		}
		prev := 0
		for i := 0; i < pathLen; i++ {
			v := cliqueSize + i
			add(prev, v, 1)
			prev = v
		}
	})
}

// Barbell returns two cliques of size k joined by a path of bridgeLen
// intermediate nodes (bridgeLen may be zero, giving a single bridge edge).
// Its minimum cut is 1, making it the canonical min-cut test graph.
func Barbell(k, bridgeLen int) *Graph {
	return Build(2*k+bridgeLen, func(add func(u, v int, w float64)) {
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				add(u, v, 1)
				add(k+u, k+v, 1)
			}
		}
		prev := 0
		for i := 0; i < bridgeLen; i++ {
			v := 2*k + i
			add(prev, v, 1)
			prev = v
		}
		add(prev, k, 1)
	})
}

// Gnp returns an Erdős–Rényi random graph G(n, p): each of the n·(n-1)/2
// potential edges is present independently with probability p.
func Gnp(n int, p float64, r *rand.Rand) *Graph {
	g := New(n)
	if p <= 0 {
		return g
	}
	if p >= 1 {
		return Complete(n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g
}

// ConnectedGnp draws G(n, p) samples until a connected one is found, up to
// 100 attempts. Use p above the connectivity threshold ln(n)/n.
func ConnectedGnp(n int, p float64, r *rand.Rand) (*Graph, error) {
	for attempt := 0; attempt < 100; attempt++ {
		g := Gnp(n, p, r)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected G(%d,%g) in 100 attempts: %w", n, p, ErrDisconnected)
}

// RandomRegular returns a random d-regular simple connected graph on n
// nodes using the Steger–Wormald pairing method: random stub pairs are
// accepted unless they form a loop or a duplicate edge, and the whole
// construction restarts only in the rare event the remaining stubs get
// stuck. n·d must be even and d < n.
func RandomRegular(n, d int, r *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic("graph: random regular needs n*d even")
	}
	if d >= n {
		panic("graph: random regular needs d < n")
	}
	for {
		g, ok := tryRandomRegular(n, d, r)
		if ok && g.IsConnected() {
			return g
		}
	}
}

func tryRandomRegular(n, d int, r *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	g := New(n)
	seen := make(map[[2]int]bool, n*d/2)
	for len(stubs) > 0 {
		accepted := false
		// A valid pair exists among the remaining stubs almost always;
		// give up (and restart the whole construction) after enough
		// consecutive rejections.
		for attempt := 0; attempt < 50+n*d; attempt++ {
			i := r.IntN(len(stubs))
			j := r.IntN(len(stubs))
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			g.AddEdge(u, v, 1)
			// Remove both stubs (larger index first).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			accepted = true
			break
		}
		if !accepted {
			return nil, false
		}
	}
	return g, true
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// node connects to its k nearest neighbors on each side, with each edge
// rewired to a uniform random endpoint with probability pRewire
// (duplicate and self edges skip rewiring).
func WattsStrogatz(n, k int, pRewire float64, r *rand.Rand) *Graph {
	if k < 1 || 2*k >= n {
		panic("graph: watts-strogatz needs 1 <= k < n/2")
	}
	type pair struct{ u, v int }
	edges := make([]pair, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, pair{v, (v + j) % n})
		}
	}
	present := make(map[pair]bool, len(edges))
	norm := func(p pair) pair {
		if p.u > p.v {
			p.u, p.v = p.v, p.u
		}
		return p
	}
	for _, e := range edges {
		present[norm(e)] = true
	}
	for i, e := range edges {
		if r.Float64() >= pRewire {
			continue
		}
		w := r.IntN(n)
		ne := norm(pair{e.u, w})
		if w == e.u || present[ne] {
			continue
		}
		delete(present, norm(e))
		present[ne] = true
		edges[i] = pair{e.u, w}
	}
	g := New(n)
	for e := range present {
		g.AddEdge(e.u, e.v, 1)
	}
	return g
}

// Margulis returns the Margulis–Gabber–Galil expander on the m×m torus
// of integers: node (x, y) is adjacent to (x±2y, y), (x±(2y+1), y),
// (x, y±2x) and (x, y±(2x+1)), all mod m. The construction is a
// celebrated explicit constant-degree expander; collapsing the multigraph
// to a simple graph leaves degrees ≤ 8 and preserves expansion up to
// constants. m must be at least 2.
func Margulis(m int) *Graph {
	if m < 2 {
		panic("graph: margulis needs m >= 2")
	}
	n := m * m
	g := New(n)
	id := func(x, y int) int { return ((x%m+m)%m)*m + (y%m+m)%m }
	seen := make(map[[2]int]bool, 4*n)
	addOnce := func(u, v int) {
		if u == v {
			return
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		g.AddEdge(u, v, 1)
	}
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			u := id(x, y)
			addOnce(u, id(x+2*y, y))
			addOnce(u, id(x-2*y, y))
			addOnce(u, id(x+2*y+1, y))
			addOnce(u, id(x-2*y-1, y))
			addOnce(u, id(x, y+2*x))
			addOnce(u, id(x, y-2*x))
			addOnce(u, id(x, y+2*x+1))
			addOnce(u, id(x, y-2*x-1))
		}
	}
	return g
}

// Dumbbell returns two random d-regular expanders of size k connected by
// exactly `bridges` random cross edges. With few bridges it has small
// expansion while both halves mix fast internally.
func Dumbbell(k, d, bridges int, r *rand.Rand) *Graph {
	left := RandomRegular(k, d, r)
	right := RandomRegular(k, d, r)
	g := New(2 * k)
	for _, e := range left.Edges() {
		g.AddEdge(e.U, e.V, 1)
	}
	for _, e := range right.Edges() {
		g.AddEdge(k+e.U, k+e.V, 1)
	}
	used := make(map[[2]int]bool, bridges)
	for len(used) < bridges {
		u, v := r.IntN(k), k+r.IntN(k)
		key := [2]int{u, v}
		if used[key] {
			continue
		}
		used[key] = true
		g.AddEdge(u, v, 1)
	}
	return g
}
