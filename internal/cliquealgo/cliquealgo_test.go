package cliquealgo

import (
	"math"
	"sync"
	"testing"

	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/mst"
	"almostmix/internal/rngutil"
)

type fixture struct {
	g *graph.Graph
	h *embed.Hierarchy
}

var shared = sync.OnceValues(func() (*fixture, error) {
	r := rngutil.NewRand(1)
	g := graph.RandomRegular(48, 6, r)
	g.AssignDistinctRandomWeights(r)
	h, err := embed.Build(g, embed.DefaultParams(), rngutil.NewSource(2))
	if err != nil {
		return nil, err
	}
	return &fixture{g: g, h: h}, nil
})

func testFixture(t *testing.T) *fixture {
	t.Helper()
	f, err := shared()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return f
}

func TestCliqueMSTMatchesKruskal(t *testing.T) {
	f := testFixture(t)
	res, err := MST(f.h, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, want := mst.Kruskal(f.g)
	if res.Weight != want {
		t.Fatalf("clique MST weight %v, Kruskal %v", res.Weight, want)
	}
	if len(res.Edges) != f.g.N()-1 {
		t.Fatalf("%d edges, want %d", len(res.Edges), f.g.N()-1)
	}
}

func TestCliqueMSTRoundBudget(t *testing.T) {
	f := testFixture(t)
	res, err := MST(f.h, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Borůvka halves fragments each iteration: ≤ 3·⌈log₂ n⌉ clique rounds.
	logN := int(math.Ceil(math.Log2(float64(f.g.N()))))
	if res.CliqueRounds > 3*logN {
		t.Fatalf("clique rounds %d exceed 3·log n = %d", res.CliqueRounds, 3*logN)
	}
	if res.EmulatedRounds != res.CliqueRounds*res.PerCliqueRound {
		t.Fatal("emulated-round accounting inconsistent")
	}
	if res.PerCliqueRound <= 0 {
		t.Fatal("per-clique-round cost not positive")
	}
}

func TestCliqueMSTDeterministic(t *testing.T) {
	f := testFixture(t)
	a, err := MST(f.h, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MST(f.h, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight || a.EmulatedRounds != b.EmulatedRounds {
		t.Fatal("same seed, different run")
	}
}

func TestSumAggregate(t *testing.T) {
	f := testFixture(t)
	values := make([]float64, f.g.N())
	want := 0.0
	for v := range values {
		values[v] = float64(v * v)
		want += values[v]
	}
	got, res, err := SumAggregate(f.h, values, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	if res.CliqueRounds != 1 || res.EmulatedRounds != res.PerCliqueRound {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestSumAggregateRejectsBadLength(t *testing.T) {
	f := testFixture(t)
	if _, _, err := SumAggregate(f.h, []float64{1, 2}, 7); err == nil {
		t.Fatal("wrong value count accepted")
	}
}

func TestUnionFindHelpers(t *testing.T) {
	frag := []int{0, 1, 2, 3}
	union(frag, 0, 1)
	union(frag, 2, 3)
	if find(frag, 1) != find(frag, 0) || find(frag, 3) != find(frag, 2) {
		t.Fatal("union broken")
	}
	if find(frag, 0) == find(frag, 2) {
		t.Fatal("premature merge")
	}
	union(frag, 1, 3)
	if find(frag, 0) != find(frag, 3) {
		t.Fatal("transitive union broken")
	}
}
