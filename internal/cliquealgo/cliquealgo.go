// Package cliquealgo runs congested-clique algorithms on top of the
// clique emulation of Theorem 1.3, realizing the paper's motivation for
// fast clique emulation: any algorithm designed for the congested-clique
// model (Lotker et al. and the long line of follow-ups cited in §1) can
// be executed over a sparse network by paying the measured emulation cost
// once per clique round.
//
// Two algorithms are provided:
//
//   - MST: Borůvka on the clique. Per iteration every node learns all
//     fragment IDs (one clique round), locally computes its candidate
//     minimum outgoing edge, ships candidates to fragment leaders (one
//     round), and leaders broadcast merge decisions (one round). The
//     3·O(log n) clique rounds make it a natural consumer of emulation.
//
//   - SumAggregate: every node contributes a value; all nodes learn the
//     sum in a single clique round — the simplest "clique axiom" demo.
package cliquealgo

import (
	"fmt"
	"sort"

	"almostmix/internal/cliquemu"
	"almostmix/internal/embed"
	"almostmix/internal/graph"
	"almostmix/internal/rngutil"
)

// Result reports a clique-algorithm execution over an emulated clique.
type Result struct {
	// CliqueRounds is the number of congested-clique rounds consumed.
	CliqueRounds int
	// EmulatedRounds is the measured base-graph cost: CliqueRounds times
	// the measured cost of one emulated clique round.
	EmulatedRounds int
	// PerCliqueRound is the measured cost of one emulated round.
	PerCliqueRound int
}

// MSTResult is Result plus the tree computed by the clique algorithm.
type MSTResult struct {
	Result
	Edges  []int
	Weight float64
}

// measureRound emulates one clique round and returns its measured cost.
func measureRound(h *embed.Hierarchy, seed uint64) (int, error) {
	res, err := cliquemu.Hierarchical(h, rngutil.NewSource(seed))
	if err != nil {
		return 0, fmt.Errorf("cliquealgo: %w", err)
	}
	return res.Rounds, nil
}

// MST computes the minimum spanning tree of h's weighted base graph with
// Borůvka-on-the-clique, charging every clique round at the measured
// emulation cost. The tree equals Kruskal's (verified in tests).
func MST(h *embed.Hierarchy, seed uint64) (*MSTResult, error) {
	g := h.Base
	if !g.IsConnected() {
		return nil, fmt.Errorf("cliquealgo: %w", graph.ErrDisconnected)
	}
	perRound, err := measureRound(h, seed)
	if err != nil {
		return nil, err
	}
	out := &MSTResult{Result: Result{PerCliqueRound: perRound}}

	n := g.N()
	frag := make([]int, n)
	for v := range frag {
		frag[v] = v
	}
	fragments := n
	for iter := 0; fragments > 1; iter++ {
		if iter > n {
			return nil, fmt.Errorf("cliquealgo: Borůvka did not converge")
		}
		// Clique round 1: every node announces its fragment ID to all,
		// so each node can classify its incident edges as outgoing.
		// Clique round 2: every node sends its best incident outgoing
		// edge to its fragment's leader (the minimum node ID in the
		// fragment, known after round 1).
		// Clique round 3: leaders broadcast the fragment's chosen edge.
		out.CliqueRounds += 3

		best := make(map[int]int) // fragment -> edge id
		edges := g.Edges()
		for id, e := range edges {
			fu, fv := frag[e.U], frag[e.V]
			if fu == fv {
				continue
			}
			for _, f := range [2]int{fu, fv} {
				cur, ok := best[f]
				if !ok || edges[id].W < edges[cur].W ||
					(edges[id].W == edges[cur].W && id < cur) {
					best[f] = id
				}
			}
		}
		// Apply all chosen edges (classic Borůvka merge).
		added := false
		for _, id := range sortedValues(best) {
			e := edges[id]
			if find(frag, e.U) == find(frag, e.V) {
				continue
			}
			union(frag, e.U, e.V)
			out.Edges = append(out.Edges, id)
			added = true
		}
		if !added {
			return nil, fmt.Errorf("cliquealgo: no progress with %d fragments", fragments)
		}
		// Flatten labels and recount.
		roots := make(map[int]struct{})
		for v := range frag {
			roots[find(frag, v)] = struct{}{}
		}
		for v := range frag {
			frag[v] = find(frag, v)
		}
		fragments = len(roots)
	}
	out.Weight = g.TotalWeight(out.Edges)
	out.EmulatedRounds = out.CliqueRounds * perRound
	return out, nil
}

// sortedValues returns the map's values sorted ascending, for
// deterministic merge order.
func sortedValues(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func find(frag []int, v int) int {
	for frag[v] != v {
		frag[v] = frag[frag[v]]
		v = frag[v]
	}
	return v
}

func union(frag []int, u, v int) {
	ru, rv := find(frag, u), find(frag, v)
	if ru < rv {
		frag[rv] = ru
	} else {
		frag[ru] = rv
	}
}

// SumAggregate computes the global sum of per-node values in one clique
// round: every node sends its value to every other node, then sums
// locally. Returns the sum and the measured cost.
func SumAggregate(h *embed.Hierarchy, values []float64, seed uint64) (float64, *Result, error) {
	if len(values) != h.Base.N() {
		return 0, nil, fmt.Errorf("cliquealgo: %d values for %d nodes", len(values), h.Base.N())
	}
	perRound, err := measureRound(h, seed)
	if err != nil {
		return 0, nil, err
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total, &Result{
		CliqueRounds:   1,
		EmulatedRounds: perRound,
		PerCliqueRound: perRound,
	}, nil
}
