package almostmix

import (
	"sync"
	"testing"
)

// The root tests are integration tests: they drive the public facade
// end-to-end the way the examples and a downstream user would.

type fx struct {
	g *Graph
	h *Hierarchy
}

var sharedFx = sync.OnceValues(func() (*fx, error) {
	g := NewRandomRegular(64, 6, 1)
	g.AssignDistinctRandomWeights(NewRand(2))
	p := DefaultParams()
	p.Beta = 4
	p.LeafSize = 12
	h, err := BuildHierarchy(g, p, 3)
	if err != nil {
		return nil, err
	}
	return &fx{g: g, h: h}, nil
})

func fixture(t *testing.T) *fx {
	t.Helper()
	f, err := sharedFx()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return f
}

func TestEndToEndRouting(t *testing.T) {
	f := fixture(t)
	reqs := PermutationWorkload(f.g, 5)
	rep, err := Route(f.h, reqs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(reqs) {
		t.Fatalf("delivered %d of %d", rep.Delivered, len(reqs))
	}
	heavy := DegreeWorkload(f.g, 7)
	rep, err = RoutePhased(f.h, heavy, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != len(heavy) {
		t.Fatalf("phased delivered %d of %d", rep.Delivered, len(heavy))
	}
}

func TestEndToEndMSTAgreesWithAllAlgorithms(t *testing.T) {
	f := fixture(t)
	hier, err := MST(f.h, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, kw := MSTKruskal(f.g)
	ghs, err := MSTBaselineGHS(f.g)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := MSTBaselineKP(f.g)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Weight != kw || ghs.Weight != kw || kp.Weight != kw {
		t.Fatalf("weights disagree: hier=%v ghs=%v kp=%v kruskal=%v",
			hier.Weight, ghs.Weight, kp.Weight, kw)
	}
	if hier.Rounds <= 0 || ghs.Rounds <= 0 || kp.Rounds <= 0 {
		t.Fatal("non-positive round counts")
	}
}

func TestEndToEndClique(t *testing.T) {
	f := fixture(t)
	res, err := EmulateClique(f.h, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := f.g.N()
	if res.Messages != n*(n-1) {
		t.Fatalf("clique delivered %d messages, want %d", res.Messages, n*(n-1))
	}
	direct, err := EmulateCliqueDirect(f.g)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Messages != n*(n-1) {
		t.Fatal("direct baseline incomplete")
	}
}

func TestEndToEndMinCut(t *testing.T) {
	g := NewBarbell(8, 2)
	exact, _, err := ExactMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxMinCut(g, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 1 || approx.CutSize != 1 {
		t.Fatalf("barbell cut: exact %v, approx %d, want 1", exact, approx.CutSize)
	}
}

func TestEndToEndSpectral(t *testing.T) {
	g := NewRing(16)
	exact, err := MixingTime(g, LazyWalk, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if exact <= 0 {
		t.Fatal("mixing time not positive")
	}
	if est := EstimateMixingTime(g, LazyWalk); est < exact {
		t.Fatalf("estimate %d below exact %d", est, exact)
	}
	if h := EdgeExpansion(g); h != 2.0/8.0 {
		t.Fatalf("h(C16) = %v, want 0.25", h)
	}
	if sweep := EdgeExpansionEstimate(g); sweep < 0.25 {
		t.Fatalf("sweep %v below exact", sweep)
	}
}

func TestGraphConstructors(t *testing.T) {
	if g := NewComplete(6); g.M() != 15 {
		t.Fatal("complete")
	}
	if g := NewTorus(3, 4); g.N() != 12 {
		t.Fatal("torus")
	}
	if g := NewHypercube(3); g.N() != 8 {
		t.Fatal("hypercube")
	}
	if g := NewLollipop(5, 5); g.N() != 10 {
		t.Fatal("lollipop")
	}
	if g := NewDumbbell(10, 4, 2, 12); g.N() != 20 {
		t.Fatal("dumbbell")
	}
	g, err := NewGnp(40, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("gnp disconnected")
	}
}

func TestCliqueApplications(t *testing.T) {
	f := fixture(t)
	res, err := CliqueMST(f.h, 30)
	if err != nil {
		t.Fatal(err)
	}
	_, want := MSTKruskal(f.g)
	if res.Weight != want {
		t.Fatalf("clique MST weight %v, want %v", res.Weight, want)
	}
	values := make([]float64, f.g.N())
	sum := 0.0
	for v := range values {
		values[v] = float64(v)
		sum += values[v]
	}
	got, acct, err := CliqueSum(f.h, values, 31)
	if err != nil {
		t.Fatal(err)
	}
	if got != sum || acct.CliqueRounds != 1 {
		t.Fatalf("clique sum %v (%+v), want %v", got, acct, sum)
	}
}

func TestNodeProgramGHS(t *testing.T) {
	f := fixture(t)
	res, err := MSTBaselineGHSNetwork(f.g, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, want := MSTKruskal(f.g)
	if res.Weight != want {
		t.Fatalf("node-program GHS weight %v, want %v", res.Weight, want)
	}
	charged, err := MSTBaselineGHS(f.g)
	if err != nil {
		t.Fatal(err)
	}
	// The fully-simulated execution pays the textbook Θ(n)-window costs,
	// so it is never cheaper than the charged O(fragment-depth) model.
	if res.Rounds < charged.Rounds {
		t.Fatalf("node-program rounds %d below charged model %d", res.Rounds, charged.Rounds)
	}
}

func TestMargulisExpanderIsGoodSubstrate(t *testing.T) {
	g := NewMargulis(8) // 64 nodes, degree <= 8
	if !g.IsConnected() {
		t.Fatal("margulis disconnected")
	}
	tau, err := MixingTime(g, LazyWalk, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ringTau, err := MixingTime(NewRing(64), LazyWalk, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if tau*10 > ringTau {
		t.Fatalf("margulis τ=%d not far below ring τ=%d", tau, ringTau)
	}
	// The hierarchy must build and route on it.
	p := DefaultParams()
	p.TauMix = tau
	h, err := BuildHierarchy(g, p, 33)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Route(h, PermutationWorkload(g, 34), 35)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != g.N() {
		t.Fatalf("delivered %d of %d", rep.Delivered, g.N())
	}
}

func TestCostLedgerFacade(t *testing.T) {
	f := fixture(t)
	var led *CostLedger = f.h.Costs
	if led == nil {
		t.Fatal("hierarchy has no cost ledger")
	}
	var root *CostSpan = led.Root
	if root.Total() != f.h.ConstructionRoundsBase() {
		t.Fatalf("ledger root %d != ConstructionRoundsBase %d",
			root.Total(), f.h.ConstructionRoundsBase())
	}
	rows := led.Rows()
	var g0 *CostRow
	for i := range rows {
		if rows[i].Path == "construction/g0" {
			g0 = &rows[i]
		}
	}
	if g0 == nil {
		t.Fatalf("no construction/g0 row in %d ledger rows", len(rows))
	}
	if g0.Total != f.h.G0.ConstructionRounds {
		t.Fatalf("g0 row total %d != overlay %d", g0.Total, f.h.G0.ConstructionRounds)
	}

	rep, err := Route(f.h, PermutationWorkload(f.g, 7), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Costs == nil || rep.Costs.Root.Total() != rep.BaseRounds {
		t.Fatalf("route ledger does not carry BaseRounds %d", rep.BaseRounds)
	}
}
