// Package almostmix is a from-scratch Go implementation of
//
//	Ghaffari, Kuhn, Su. "Distributed MST and Routing in Almost Mixing
//	Time." PODC 2017.
//
// It provides the paper's hierarchical embedding of random graphs, the
// permutation-routing scheme built on it (Theorem 1.2), the minimum
// spanning tree algorithm that runs in τ_mix·2^O(√(log n·log log n))
// rounds (Theorem 1.1), clique emulation (Theorem 1.3), and an
// approximate minimum cut — all running on a synchronous CONGEST-model
// simulator that measures real round counts, together with the classical
// baselines (flood-GHS Borůvka and a Garay–Kutten–Peleg-style Õ(D+√n)
// algorithm) and the spectral toolkit (mixing times, edge expansion,
// conductance) that the paper's bounds are parameterized by.
//
// # Quick start
//
//	g := almostmix.NewRandomRegular(256, 8, 1)   // an expander network
//	g.AssignDistinctRandomWeights(almostmix.NewRand(2))
//	h, err := almostmix.BuildHierarchy(g, almostmix.DefaultParams(), 3)
//	if err != nil { ... }
//	res, err := almostmix.MST(h, 4)              // Theorem 1.1
//	fmt.Println(res.Rounds, res.Weight)
//
// The hierarchy is reusable: once built, any number of routing, MST, or
// clique-emulation invocations run on it.
//
// All randomness flows from explicit seeds, so every run is reproducible.
// Round counts are measured, not assumed: virtual overlay edges carry the
// recorded random-walk paths they were embedded along, and higher-level
// communication expands into store-and-forward schedules on those paths
// under CONGEST capacities.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every quantitative claim in the paper.
package almostmix
